package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/huffduff/huffduff/internal/prof"
)

func discard(string, ...any) {}

// fakeScenarios returns instant scenarios with deterministic metrics so the
// append/gate logic can be tested without multi-second attack runs.
func fakeScenarios() []scenario {
	return []scenario{
		{"attack_fake", func() (Metrics, error) {
			return Metrics{
				"wall_seconds":   1.0,
				"victim_queries": 100,
				"device_seconds": 0.5,
				"device_cycles":  1e8,
				"solution_count": 4,
			}, nil
		}},
		{"encode_fake", func() (Metrics, error) {
			return Metrics{"values_per_second": 1e6, "bytes_per_second": 1e5}, nil
		}},
	}
}

func TestAppendsAndGates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_pipeline.json")

	// First run: no history, gate vacuously passes, record written.
	bad, err := runBench(path, fakeScenarios(), nil, true, false, discard)
	if err != nil || len(bad) != 0 {
		t.Fatalf("first run: regressions=%v err=%v", bad, err)
	}
	recs, err := loadRecords(path)
	if err != nil || len(recs) != 1 {
		t.Fatalf("after first run: %d records, err=%v", len(recs), err)
	}
	for _, m := range []string{"wall_seconds", "victim_queries", "device_cycles"} {
		if _, ok := recs[0].Scenarios["attack_fake"][m]; !ok {
			t.Errorf("record missing %s", m)
		}
	}
	if recs[0].Timestamp == "" || recs[0].GoVersion == "" {
		t.Errorf("record missing provenance: %+v", recs[0])
	}

	// Second run: appends rather than overwrites, identical metrics pass.
	bad, err = runBench(path, fakeScenarios(), nil, true, false, discard)
	if err != nil || len(bad) != 0 {
		t.Fatalf("second run: regressions=%v err=%v", bad, err)
	}
	if recs, _ = loadRecords(path); len(recs) != 2 {
		t.Fatalf("second run did not append: %d records", len(recs))
	}

	// Third run with an injected 2x slowdown: the wall-time gate trips.
	bad, err = runBench(path, fakeScenarios(), slowdowns{"attack_fake": 2}, true, false, discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 || !strings.Contains(bad[0], "attack_fake: wall_seconds") {
		t.Fatalf("2x slowdown not caught: %v", bad)
	}
	// The regressed record is still appended — the trajectory keeps the
	// bad data point, the exit code carries the verdict.
	if recs, _ = loadRecords(path); len(recs) != 3 {
		t.Fatalf("regressed run not recorded: %d records", len(recs))
	}

	// Fourth run with -no-gate: same slowdown, no failure.
	bad, err = runBench(path, fakeScenarios(), slowdowns{"attack_fake": 4}, false, false, discard)
	if err != nil || len(bad) != 0 {
		t.Fatalf("no-gate run: regressions=%v err=%v", bad, err)
	}
}

func TestCompareRules(t *testing.T) {
	prev := Record{Scenarios: map[string]Metrics{
		"s": {"wall_seconds": 1, "victim_queries": 100, "values_per_second": 1e6, "unguarded": 1},
	}}
	cases := []struct {
		name string
		next Metrics
		want int
	}{
		{"identical", Metrics{"wall_seconds": 1, "victim_queries": 100, "values_per_second": 1e6}, 0},
		{"within wall threshold", Metrics{"wall_seconds": 1.5}, 0},
		{"wall regression", Metrics{"wall_seconds": 2.0}, 1},
		{"query regression", Metrics{"victim_queries": 120}, 1},
		{"throughput collapse", Metrics{"values_per_second": 4e5}, 1},
		{"throughput improvement", Metrics{"values_per_second": 5e6}, 0},
		{"unguarded metric ignored", Metrics{"unguarded": 100}, 0},
		{"new metric ignored", Metrics{"brand_new": 5}, 0},
	}
	for _, c := range cases {
		next := Record{Scenarios: map[string]Metrics{"s": c.next}}
		if got := compare(prev, next, false); len(got) != c.want {
			t.Errorf("%s: got %d regressions (%v), want %d", c.name, len(got), got, c.want)
		}
	}
	// A scenario missing from the previous record is not gated.
	if got := compare(Record{}, Record{Scenarios: map[string]Metrics{"s": {"wall_seconds": 99}}}, false); len(got) != 0 {
		t.Errorf("new scenario gated against nothing: %v", got)
	}
}

func TestRuleForStageFamily(t *testing.T) {
	for _, m := range []string{"stage_probe_wall_seconds", "stage_total_wall_seconds"} {
		r, ok := ruleFor(m)
		if !ok || r.higherBetter || r.deterministic {
			t.Errorf("ruleFor(%q) = %+v, %v; want a loose lower-is-better wall rule", m, r, ok)
		}
	}
	// Alloc/GC stage metrics are recorded but deliberately not gated.
	for _, m := range []string{"stage_probe_alloc_bytes", "stage_solve_gc_cpu_seconds"} {
		if _, ok := ruleFor(m); ok {
			t.Errorf("ruleFor(%q) gated a non-wall stage metric", m)
		}
	}
	// Exact rules still win.
	if r, ok := ruleFor("trace_events"); !ok || !r.deterministic {
		t.Errorf("ruleFor(trace_events) = %+v, %v", r, ok)
	}
	if _, ok := ruleFor("nonsense"); ok {
		t.Error("ruleFor invented a rule for an unknown metric")
	}
}

func TestStageWallRegressionGates(t *testing.T) {
	prev := Record{Scenarios: map[string]Metrics{
		"s": {"stage_probe_wall_seconds": 1.0, "trace_events": 1000},
	}}
	next := Record{Scenarios: map[string]Metrics{
		"s": {"stage_probe_wall_seconds": 3.0, "trace_events": 1000},
	}}
	if got := compare(prev, next, false); len(got) != 1 || !strings.Contains(got[0], "stage_probe_wall_seconds") {
		t.Errorf("3x stage slowdown not caught: %v", got)
	}
	// Stage wall times are host noise in deterministic-only mode...
	if got := compare(prev, next, true); len(got) != 0 {
		t.Errorf("stage wall gated cross-machine: %v", got)
	}
	// ...but trace_events drift is code drift everywhere.
	next.Scenarios["s"]["trace_events"] = 1200
	if got := compare(prev, next, true); len(got) != 1 || !strings.Contains(got[0], "trace_events") {
		t.Errorf("trace_events drift missed: %v", got)
	}
}

func TestAddStageMetrics(t *testing.T) {
	rep := &prof.Report{
		StageWallSeconds:    4.5,
		TraceEvents:         1000,
		WallPerDeviceSecond: 250,
		SymExprs:            5000,
		Stages: []prof.StageCost{
			{Stage: "probe", WallSeconds: 4, AllocBytes: 1 << 20, GCCPUSeconds: 0.1},
			{Stage: "solve", WallSeconds: 0.5},
		},
	}
	m := Metrics{}
	addStageMetrics(m, rep)
	want := Metrics{
		"stage_probe_wall_seconds":   4,
		"stage_probe_alloc_bytes":    1 << 20,
		"stage_probe_gc_cpu_seconds": 0.1,
		"stage_solve_wall_seconds":   0.5,
		"stage_solve_alloc_bytes":    0,
		"stage_solve_gc_cpu_seconds": 0,
		"stage_total_wall_seconds":   4.5,
		"trace_events":               1000,
		"wall_device_ratio":          250,
		"sym_interned_exprs":         5000,
	}
	for k, v := range want {
		if m[k] != v {
			t.Errorf("%s = %v, want %v", k, m[k], v)
		}
	}
	// Zero-valued derived metrics stay out rather than polluting the record.
	m2 := Metrics{}
	addStageMetrics(m2, &prof.Report{})
	for _, absent := range []string{"trace_events", "wall_device_ratio", "sym_interned_exprs"} {
		if _, ok := m2[absent]; ok {
			t.Errorf("empty report emitted %s", absent)
		}
	}
}

func TestDeltaLines(t *testing.T) {
	prev := Record{Scenarios: map[string]Metrics{
		"a": {"wall_seconds": 2.0, "gone": 1},
		"z": {"wall_seconds": 1.0},
	}}
	next := Record{Scenarios: map[string]Metrics{
		"a":         {"wall_seconds": 1.0, "fresh": 3},
		"z":         {"wall_seconds": 1.5},
		"brand_new": {"wall_seconds": 9},
	}}
	lines := deltaLines(prev, next)
	want := []string{
		"delta a: wall_seconds 2 -> 1 (-50.0%)",
		"delta z: wall_seconds 1 -> 1.5 (+50.0%)",
	}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines %v, want %d", len(lines), lines, len(want))
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestSlowdownsFlag(t *testing.T) {
	s := slowdowns{}
	if err := s.Set("attack_smallcnn=2"); err != nil {
		t.Fatal(err)
	}
	if s["attack_smallcnn"] != 2 {
		t.Fatalf("parsed %v", s)
	}
	for _, bad := range []string{"nofactor", "x=", "x=-1", "x=zero"} {
		if err := s.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}

// TestRealScenariosProduceRequiredMetrics runs the true benchmark suite
// once (tens of seconds) and checks every acceptance-relevant metric is
// present and sane in the appended record.
func TestRealScenariosProduceRequiredMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark scenarios")
	}
	path := filepath.Join(t.TempDir(), "BENCH_pipeline.json")
	env := newBenchEnv()
	bad, err := runBench(path, scenarios(env), nil, true, false, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("first run cannot regress: %v", bad)
	}
	recs, err := loadRecords(path)
	if err != nil || len(recs) != 1 {
		t.Fatalf("records=%d err=%v", len(recs), err)
	}
	for _, name := range []string{"attack_smallcnn", "attack_resnet18"} {
		m := recs[0].Scenarios[name]
		for _, k := range []string{"wall_seconds", "victim_queries", "device_seconds", "device_cycles", "solution_count"} {
			if m[k] <= 0 {
				t.Errorf("%s: %s = %v, want > 0", name, k, m[k])
			}
		}
		if m["device_cycles"] < m["device_seconds"] {
			t.Errorf("%s: cycles %v below seconds %v (clock rate lost?)", name, m["device_cycles"], m["device_seconds"])
		}
		// Cost attribution: the per-stage wall times must account for the
		// scenario's end-to-end wall time to within 10% (the acceptance bar
		// for the profiling subsystem — unattributed time means a stage is
		// missing its span).
		sum := m["stage_total_wall_seconds"]
		if sum <= 0 {
			t.Fatalf("%s: no stage wall attribution in %v", name, m)
		}
		if ratio := sum / m["wall_seconds"]; ratio < 0.9 || ratio > 1.1 {
			t.Errorf("%s: stages cover %.1f%% of wall time, want within 10%%", name, 100*ratio)
		}
		for _, stage := range []string{"calibrate", "probe", "solve", "geometry", "timing", "finalize"} {
			if _, ok := m["stage_"+stage+"_wall_seconds"]; !ok {
				t.Errorf("%s: stage %s missing from record", name, stage)
			}
		}
		if m["trace_events"] <= 0 || m["wall_device_ratio"] <= 0 || m["sym_interned_exprs"] <= 0 {
			t.Errorf("%s: simulator cost metrics missing: %v", name, m)
		}
		rep := env.reports[name]
		if !strings.Contains(rep, "attributed cost report") || !strings.Contains(rep, "probe") {
			t.Errorf("%s: hotspot report missing or empty:\n%s", name, rep)
		}
	}
	if recs[0].Scenarios["encode_micro"]["values_per_second"] <= 0 {
		t.Errorf("encoder throughput missing: %v", recs[0].Scenarios["encode_micro"])
	}
	dm := recs[0].Scenarios["daemon_restart"]
	if dm["campaigns_resumed"] != 3 || dm["campaigns_completed"] != 3 {
		t.Errorf("daemon_restart recovery counts: %v", dm)
	}
	if dm["journal_appends"] <= 0 || dm["wall_seconds"] <= 0 {
		t.Errorf("daemon_restart journal metrics missing: %v", dm)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicOnlyGate(t *testing.T) {
	prev := Record{Scenarios: map[string]Metrics{
		"s": {"wall_seconds": 1, "victim_queries": 100, "values_per_second": 1e6},
	}}
	// A 3x wall slowdown and throughput collapse on different hardware are
	// forgiven; a victim-query increase is code drift and still fails.
	next := Record{Scenarios: map[string]Metrics{
		"s": {"wall_seconds": 3, "victim_queries": 100, "values_per_second": 2e5},
	}}
	if got := compare(prev, next, true); len(got) != 0 {
		t.Errorf("machine-dependent metrics gated in deterministic-only mode: %v", got)
	}
	next.Scenarios["s"]["victim_queries"] = 150
	if got := compare(prev, next, true); len(got) != 1 {
		t.Errorf("deterministic regression missed: %v", got)
	}

	// The daemon_restart scenario's only gated metric is wall_seconds
	// (machine-dependent), so a cross-machine -deterministic-only gate
	// must tolerate it no matter how much its timing drifts.
	prev = Record{Scenarios: map[string]Metrics{
		"daemon_restart": {"wall_seconds": 2, "campaigns_resumed": 3, "campaigns_completed": 3, "journal_appends": 20},
	}}
	next = Record{Scenarios: map[string]Metrics{
		"daemon_restart": {"wall_seconds": 10, "campaigns_resumed": 3, "campaigns_completed": 3, "journal_appends": 27},
	}}
	if got := compare(prev, next, true); len(got) != 0 {
		t.Errorf("daemon_restart tripped the deterministic-only gate: %v", got)
	}
}
