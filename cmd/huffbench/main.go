// Command huffbench is the continuous benchmark harness for the attack
// pipeline: it runs a fixed set of end-to-end and micro scenarios, appends
// a timestamped record to BENCH_pipeline.json, and exits nonzero when a
// tracked metric regresses beyond its threshold against the previous
// record. CI runs it on every push and uploads the JSON as an artifact, so
// the file is the pipeline's performance trajectory.
//
// Usage:
//
//	huffbench -out BENCH_pipeline.json
//	huffbench -no-gate            # record a fresh baseline, never fail
//	huffbench -slow attack_smallcnn=2   # gate self-test: injected slowdown
//
// Scenario notes: the heavier end-to-end scenario is a width-scaled
// ResNet-18 rather than VGG-S — a VGG-S geometry solve explodes the
// symbolic engine's expression count (GBs of interned sums) and does not
// finish in CI time; see EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"github.com/huffduff/huffduff/cmd/internal/cli"
	"github.com/huffduff/huffduff/internal/accel"
	"github.com/huffduff/huffduff/internal/converge"
	attack "github.com/huffduff/huffduff/internal/huffduff"
	"github.com/huffduff/huffduff/internal/models"
	"github.com/huffduff/huffduff/internal/obs"
	"github.com/huffduff/huffduff/internal/prof"
	"github.com/huffduff/huffduff/internal/prune"
	"github.com/huffduff/huffduff/internal/sparse"
)

// scenario is one fixed benchmark workload.
type scenario struct {
	name string
	run  func() (Metrics, error)
}

// benchEnv collects per-scenario side artifacts (attributed cost reports,
// convergence ledgers) that do not belong in the gated metric record.
// Scenarios run sequentially, so plain map writes are safe.
type benchEnv struct {
	reports map[string]string // scenario name -> prof report text
	// ledgerDir, when set, receives one <scenario>.ledger.jsonl convergence
	// curve per attack scenario (the -ledger-dir CI artifact).
	ledgerDir string
}

func newBenchEnv() *benchEnv { return &benchEnv{reports: map[string]string{}} }

// writeLedger dumps one scenario's convergence ledger into env.ledgerDir.
func (e *benchEnv) writeLedger(name string, led *converge.Ledger) error {
	if e == nil || e.ledgerDir == "" {
		return nil
	}
	if err := os.MkdirAll(e.ledgerDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(e.ledgerDir, name+".ledger.jsonl"))
	if err != nil {
		return err
	}
	defer f.Close()
	return led.WriteJSONL(f)
}

// hotspotText renders every scenario's attributed cost report in
// deterministic order, for the -hotspots artifact.
func (e *benchEnv) hotspotText() string {
	names := make([]string, 0, len(e.reports))
	for name := range e.reports {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		fmt.Fprintf(&sb, "=== %s ===\n%s\n", name, e.reports[name])
	}
	return sb.String()
}

// attackScenario deploys a pruned victim and measures one full attack:
// host wall time, victim-query count, simulated device time and cycles,
// the size of the recovered solution space, and — via an attached
// obs.Collector feeding internal/prof — the per-stage cost breakdown
// (wall, alloc, GC) that attributes those wall-seconds. The attributed
// report text lands in env.reports for the -hotspots artifact.
func attackScenario(env *benchEnv, name, model string, scale int, keep float64, trials, q int, seed int64) func() (Metrics, error) {
	return func() (Metrics, error) {
		arch, err := models.ByName(model, scale)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed))
		bind, err := arch.Build(rng)
		if err != nil {
			return nil, err
		}
		if keep < 1 {
			prune.GlobalMagnitude(bind.Net.Params(), keep)
		}
		col := obs.NewCollector()
		acfg := accel.DefaultConfig()
		acfg.Seed = seed
		acfg.Obs = col
		m := accel.NewMachine(acfg, arch, bind)

		cfg := attack.DefaultConfig()
		cfg.Probe.Trials = trials
		cfg.Probe.Q = q
		cfg.Probe.Seed = seed
		cfg.Obs = col
		led := converge.NewLedger(col)
		cfg.Ledger = led
		start := time.Now()
		res, err := attack.Attack(m, cfg)
		wall := time.Since(start).Seconds()
		led.Close()
		if err != nil {
			return nil, err
		}
		if err := env.writeLedger(name, led); err != nil {
			return nil, fmt.Errorf("%s: ledger artifact: %w", name, err)
		}
		dev := m.Campaign()
		sum := led.Summary()
		met := Metrics{
			"wall_seconds":   wall,
			"victim_queries": float64(dev.Runs),
			"device_seconds": dev.SimulatedTime,
			"device_cycles":  dev.SimulatedTime * acfg.ClockHz,
			"solution_count": float64(res.Space.Count()),
			// Convergence-ledger metrics: how small the solution space ended
			// up, how many victim queries bought 90% of the collapse, and the
			// interner's peak size (the VGG-S blowup guard).
			"converge_log10_volume_final": sum.FinalLog10Volume,
			"converge_queries_to_90pct":   float64(sum.QueriesTo90Pct),
			"sym_peak_exprs":              float64(sum.PeakSymExprs),
		}
		rep := prof.BuildReport(col.Metrics(), wall, 12)
		addStageMetrics(met, rep)
		if env != nil {
			env.reports[name] = rep.Text()
		}
		return met, nil
	}
}

// addStageMetrics folds the attributed cost report into the scenario's
// gated metric record: one wall/alloc/GC triple per pipeline stage plus the
// simulator workload measures. Stage names come from the attack pipeline
// (calibrate, probe, solve, geometry, timing, finalize).
func addStageMetrics(m Metrics, rep *prof.Report) {
	for _, s := range rep.Stages {
		m["stage_"+s.Stage+"_wall_seconds"] = s.WallSeconds
		m["stage_"+s.Stage+"_alloc_bytes"] = s.AllocBytes
		m["stage_"+s.Stage+"_gc_cpu_seconds"] = s.GCCPUSeconds
	}
	// The suffix keeps this under the stage_*_wall_seconds prefix rule.
	m["stage_total_wall_seconds"] = rep.StageWallSeconds
	if rep.TraceEvents > 0 {
		m["trace_events"] = rep.TraceEvents
	}
	if rep.WallPerDeviceSecond > 0 {
		m["wall_device_ratio"] = rep.WallPerDeviceSecond
	}
	if rep.SymExprs > 0 {
		m["sym_interned_exprs"] = rep.SymExprs
	}
}

// encodeMicro measures raw encoder throughput: the sparse codecs the
// simulated accelerator uses on its DRAM bus, fed a fixed pseudo-random
// activation tensor at attack-typical density.
func encodeMicro() (Metrics, error) {
	const (
		n       = 1 << 16
		density = 0.3
		iters   = 300
	)
	rng := rand.New(rand.NewSource(7))
	values := make([]float64, n)
	for i := range values {
		if rng.Float64() < density {
			values[i] = rng.NormFloat64()
		}
	}
	codecs := []sparse.Codec{
		sparse.Bitmap{ElemBytes: 1},
		sparse.RLE{ElemBytes: 1, RunBits: 4},
		sparse.CSC{ElemBytes: 1, IndexBits: 4},
	}
	var outBytes int64
	start := time.Now()
	for i := 0; i < iters; i++ {
		for _, c := range codecs {
			outBytes += int64(c.Encode(values).Bytes)
		}
	}
	wall := time.Since(start).Seconds()
	encoded := float64(iters * len(codecs) * n)
	return Metrics{
		"wall_seconds":      wall,
		"values_per_second": encoded / wall,
		"bytes_per_second":  float64(outBytes) / wall,
	}, nil
}

func scenarios(env *benchEnv) []scenario {
	return []scenario{
		{"attack_smallcnn", attackScenario(env, "attack_smallcnn", "smallcnn", 1, 0.5, 8, 8, 1)},
		{"attack_resnet18", attackScenario(env, "attack_resnet18", "resnet18", 16, 0.6, 6, 16, 1234)},
		{"encode_micro", encodeMicro},
		{"daemon_restart", daemonRestart},
		{"store_readpath", storeReadpath},
		{"huffvet", huffvetScenario},
	}
}

// runBench executes the scenarios, applies injected slowdowns, appends the
// record to path, and returns the regression report (empty = gate passed).
func runBench(path string, scens []scenario, slow slowdowns, gate, deterministicOnly bool, logf func(string, ...any)) ([]string, error) {
	history, err := loadRecords(path)
	if err != nil {
		return nil, err
	}
	rec := Record{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Scenarios: map[string]Metrics{},
	}
	for _, s := range scens {
		logf("running %s...", s.name)
		start := time.Now()
		m, err := s.run()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.name, err)
		}
		if f, ok := slow[s.name]; ok {
			// Self-test hook: pretend the scenario ran f times slower, so
			// the regression gate itself can be exercised end to end.
			m["wall_seconds"] *= f
		}
		rec.Scenarios[s.name] = m
		logf("%s done in %.2fs: %v", s.name, time.Since(start).Seconds(), m)
	}

	if len(history) > 0 {
		for _, line := range deltaLines(history[len(history)-1], rec) {
			logf("%s", line)
		}
	}
	var regressions []string
	if gate && len(history) > 0 {
		regressions = compare(history[len(history)-1], rec, deterministicOnly)
	}
	if err := saveRecords(path, append(history, rec)); err != nil {
		return nil, err
	}
	return regressions, nil
}

func main() {
	cli.Setup()
	slow := slowdowns{}
	var (
		out     = flag.String("out", "BENCH_pipeline.json", "benchmark history file (JSON array, appended)")
		noGate  = flag.Bool("no-gate", false, "record without comparing to the previous record")
		detOnly = flag.Bool("deterministic-only", false,
			"gate only machine-independent metrics (for comparing against a baseline recorded on different hardware)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile (post-GC) to this file at exit")
		hotspots   = flag.String("hotspots", "", "write the per-scenario attributed cost reports to this file")
		ledgerDir  = flag.String("ledger-dir", "", "write per-scenario convergence ledgers (<scenario>.ledger.jsonl) into this directory")
	)
	flag.Var(slow, "slow", "inject an artificial slowdown, scenario=factor (repeatable; gate self-test)")
	flag.Parse()

	// main exits through os.Exit on the regression path, so the CPU profile
	// is stopped explicitly rather than deferred.
	stopCPU := func() {}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		cli.Check(err)
		cli.Check(pprof.StartCPUProfile(f))
		// The stage= / layer= goroutine labels set by internal/prof slice
		// this profile: go tool pprof -tagfocus stage=probe <file>.
		stopCPU = func() {
			pprof.StopCPUProfile()
			cli.Check(f.Close())
		}
	}

	env := newBenchEnv()
	env.ledgerDir = *ledgerDir
	regressions, err := runBench(*out, scenarios(env), slow, !*noGate, *detOnly, log.Printf)
	stopCPU()
	cli.Check(err)

	if *hotspots != "" {
		cli.Check(os.WriteFile(*hotspots, []byte(env.hotspotText()), 0o644))
		log.Printf("hotspot report written to %s", *hotspots)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		cli.Check(err)
		runtime.GC() // settle the heap so the profile shows live objects
		cli.Check(pprof.WriteHeapProfile(f))
		cli.Check(f.Close())
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			log.Printf("REGRESSION %s", r)
		}
		log.Printf("%d metric(s) regressed beyond threshold; record appended to %s", len(regressions), *out)
		os.Exit(1)
	}
	log.Printf("gate passed; record appended to %s", *out)
}
