// Command huffbench is the continuous benchmark harness for the attack
// pipeline: it runs a fixed set of end-to-end and micro scenarios, appends
// a timestamped record to BENCH_pipeline.json, and exits nonzero when a
// tracked metric regresses beyond its threshold against the previous
// record. CI runs it on every push and uploads the JSON as an artifact, so
// the file is the pipeline's performance trajectory.
//
// Usage:
//
//	huffbench -out BENCH_pipeline.json
//	huffbench -no-gate            # record a fresh baseline, never fail
//	huffbench -slow attack_smallcnn=2   # gate self-test: injected slowdown
//
// Scenario notes: the heavier end-to-end scenario is a width-scaled
// ResNet-18 rather than VGG-S — a VGG-S geometry solve explodes the
// symbolic engine's expression count (GBs of interned sums) and does not
// finish in CI time; see EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"time"

	"github.com/huffduff/huffduff/cmd/internal/cli"
	"github.com/huffduff/huffduff/internal/accel"
	attack "github.com/huffduff/huffduff/internal/huffduff"
	"github.com/huffduff/huffduff/internal/models"
	"github.com/huffduff/huffduff/internal/prune"
	"github.com/huffduff/huffduff/internal/sparse"
)

// scenario is one fixed benchmark workload.
type scenario struct {
	name string
	run  func() (Metrics, error)
}

// attackScenario deploys a pruned victim and measures one full attack:
// host wall time, victim-query count, simulated device time and cycles,
// and the size of the recovered solution space.
func attackScenario(model string, scale int, keep float64, trials, q int, seed int64) func() (Metrics, error) {
	return func() (Metrics, error) {
		arch, err := models.ByName(model, scale)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed))
		bind, err := arch.Build(rng)
		if err != nil {
			return nil, err
		}
		if keep < 1 {
			prune.GlobalMagnitude(bind.Net.Params(), keep)
		}
		acfg := accel.DefaultConfig()
		acfg.Seed = seed
		m := accel.NewMachine(acfg, arch, bind)

		cfg := attack.DefaultConfig()
		cfg.Probe.Trials = trials
		cfg.Probe.Q = q
		cfg.Probe.Seed = seed
		start := time.Now()
		res, err := attack.Attack(m, cfg)
		wall := time.Since(start).Seconds()
		if err != nil {
			return nil, err
		}
		dev := m.Campaign()
		return Metrics{
			"wall_seconds":   wall,
			"victim_queries": float64(dev.Runs),
			"device_seconds": dev.SimulatedTime,
			"device_cycles":  dev.SimulatedTime * acfg.ClockHz,
			"solution_count": float64(res.Space.Count()),
		}, nil
	}
}

// encodeMicro measures raw encoder throughput: the sparse codecs the
// simulated accelerator uses on its DRAM bus, fed a fixed pseudo-random
// activation tensor at attack-typical density.
func encodeMicro() (Metrics, error) {
	const (
		n       = 1 << 16
		density = 0.3
		iters   = 300
	)
	rng := rand.New(rand.NewSource(7))
	values := make([]float64, n)
	for i := range values {
		if rng.Float64() < density {
			values[i] = rng.NormFloat64()
		}
	}
	codecs := []sparse.Codec{
		sparse.Bitmap{ElemBytes: 1},
		sparse.RLE{ElemBytes: 1, RunBits: 4},
		sparse.CSC{ElemBytes: 1, IndexBits: 4},
	}
	var outBytes int64
	start := time.Now()
	for i := 0; i < iters; i++ {
		for _, c := range codecs {
			outBytes += int64(c.Encode(values).Bytes)
		}
	}
	wall := time.Since(start).Seconds()
	encoded := float64(iters * len(codecs) * n)
	return Metrics{
		"wall_seconds":      wall,
		"values_per_second": encoded / wall,
		"bytes_per_second":  float64(outBytes) / wall,
	}, nil
}

func scenarios() []scenario {
	return []scenario{
		{"attack_smallcnn", attackScenario("smallcnn", 1, 0.5, 8, 8, 1)},
		{"attack_resnet18", attackScenario("resnet18", 16, 0.6, 6, 16, 1234)},
		{"encode_micro", encodeMicro},
		{"daemon_restart", daemonRestart},
	}
}

// runBench executes the scenarios, applies injected slowdowns, appends the
// record to path, and returns the regression report (empty = gate passed).
func runBench(path string, scens []scenario, slow slowdowns, gate, deterministicOnly bool, logf func(string, ...any)) ([]string, error) {
	history, err := loadRecords(path)
	if err != nil {
		return nil, err
	}
	rec := Record{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Scenarios: map[string]Metrics{},
	}
	for _, s := range scens {
		logf("running %s...", s.name)
		start := time.Now()
		m, err := s.run()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.name, err)
		}
		if f, ok := slow[s.name]; ok {
			// Self-test hook: pretend the scenario ran f times slower, so
			// the regression gate itself can be exercised end to end.
			m["wall_seconds"] *= f
		}
		rec.Scenarios[s.name] = m
		logf("%s done in %.2fs: %v", s.name, time.Since(start).Seconds(), m)
	}

	var regressions []string
	if gate && len(history) > 0 {
		regressions = compare(history[len(history)-1], rec, deterministicOnly)
	}
	if err := saveRecords(path, append(history, rec)); err != nil {
		return nil, err
	}
	return regressions, nil
}

func main() {
	cli.Setup()
	slow := slowdowns{}
	var (
		out     = flag.String("out", "BENCH_pipeline.json", "benchmark history file (JSON array, appended)")
		noGate  = flag.Bool("no-gate", false, "record without comparing to the previous record")
		detOnly = flag.Bool("deterministic-only", false,
			"gate only machine-independent metrics (for comparing against a baseline recorded on different hardware)")
	)
	flag.Var(slow, "slow", "inject an artificial slowdown, scenario=factor (repeatable; gate self-test)")
	flag.Parse()

	regressions, err := runBench(*out, scenarios(), slow, !*noGate, *detOnly, log.Printf)
	cli.Check(err)
	if len(regressions) > 0 {
		for _, r := range regressions {
			log.Printf("REGRESSION %s", r)
		}
		log.Printf("%d metric(s) regressed beyond threshold; record appended to %s", len(regressions), *out)
		os.Exit(1)
	}
	log.Printf("gate passed; record appended to %s", *out)
}
