package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one scenario's measurements, by metric name.
type Metrics map[string]float64

// Record is one huffbench run: every scenario's metrics under one
// timestamp. BENCH_pipeline.json is a JSON array of these, appended to on
// every run, so the file is the benchmark trajectory of the pipeline over
// time.
type Record struct {
	Timestamp string             `json:"timestamp"`
	GoVersion string             `json:"go_version"`
	Scenarios map[string]Metrics `json:"scenarios"`
}

// loadRecords reads the existing benchmark history; a missing file is an
// empty history.
func loadRecords(path string) ([]Record, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var recs []Record
	if err := json.Unmarshal(raw, &recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

// saveRecords writes the full history back (append-style: callers append
// the new record to the loaded slice first).
func saveRecords(path string, recs []Record) error {
	raw, err := json.MarshalIndent(recs, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// rule is the regression policy for one metric. A lower-is-better metric
// regresses when new > old*threshold; a higher-is-better one when
// new < old/threshold. Deterministic metrics (query counts, simulated
// device time) get tight thresholds and hold across machines; wall-clock
// metrics get loose ones so machine noise does not trip the gate, while a
// genuine 2x slowdown does.
type rule struct {
	higherBetter bool
	threshold    float64
	// deterministic metrics depend only on the code, not the machine, so
	// they can be gated against a baseline recorded elsewhere (CI vs. the
	// committed record).
	deterministic bool
}

var rules = map[string]rule{
	"wall_seconds":      {higherBetter: false, threshold: 1.8},
	"victim_queries":    {higherBetter: false, threshold: 1.05, deterministic: true},
	"device_seconds":    {higherBetter: false, threshold: 1.05, deterministic: true},
	"device_cycles":     {higherBetter: false, threshold: 1.05, deterministic: true},
	"solution_count":    {higherBetter: false, threshold: 1.05, deterministic: true},
	"values_per_second": {higherBetter: true, threshold: 1.8},
	"bytes_per_second":  {higherBetter: true, threshold: 1.8},
	// Cost-attribution metrics (internal/prof via attackScenario). Trace
	// events and interner size depend only on the code path, so they gate
	// across machines; the interner gets slack for solve-schedule tweaks.
	"trace_events":       {higherBetter: false, threshold: 1.05, deterministic: true},
	"sym_interned_exprs": {higherBetter: false, threshold: 1.1, deterministic: true},
	// wall/device is the simulator slowdown the fast-path work must cut; a
	// loose host-noise threshold still catches a hot-loop regression.
	"wall_device_ratio": {higherBetter: false, threshold: 2.5},
	// Convergence-ledger metrics: the final solution-space volume and the
	// query cost of 90% of the collapse depend only on the code path, as
	// does the interner's peak size (which guards the VGG-S-style blowup;
	// same slack as sym_interned_exprs for solve-schedule tweaks).
	"converge_log10_volume_final": {higherBetter: false, threshold: 1.05, deterministic: true},
	"converge_queries_to_90pct":   {higherBetter: false, threshold: 1.05, deterministic: true},
	"sym_peak_exprs":              {higherBetter: false, threshold: 1.1, deterministic: true},
	// Campaign-store read path (store_readpath). The corpus is seeded, so
	// its shape — record/byte/segment counts, scan matches, model count —
	// depends only on the code and gates across machines; the per-operation
	// read latencies are host wall time and gate loosely, same-machine only.
	"store_records":    {higherBetter: false, threshold: 1.05, deterministic: true},
	"store_bytes":      {higherBetter: false, threshold: 1.1, deterministic: true},
	"store_segments":   {higherBetter: false, threshold: 1.1, deterministic: true},
	"scan_matches":     {higherBetter: false, threshold: 1.05, deterministic: true},
	"aggregate_models": {higherBetter: false, threshold: 1.05, deterministic: true},
	// Static-analysis pass (huffvet scenario): a full-module load plus all
	// analyzers. Wall time is dominated by source-importing the standard
	// library, which is host- and cache-sensitive, so the gate is loose and
	// same-machine only; the package count is context, not a gate.
	"huffvet_wall_seconds": {higherBetter: false, threshold: 2.5},
	"open_seconds":         {higherBetter: false, threshold: 2.5},
	"point_lookup_seconds": {higherBetter: false, threshold: 2.5},
	"range_scan_seconds":   {higherBetter: false, threshold: 2.5},
	"aggregate_seconds":    {higherBetter: false, threshold: 2.5},
}

// ruleFor resolves the regression policy for a metric: exact rules first,
// then the per-stage wall-time family (stage_<name>_wall_seconds, including
// stage_total_wall_seconds), which is host-noisy — single stages jitter more
// than the end-to-end wall — so it gets the loosest threshold. Stage alloc
// and GC metrics are recorded but not gated: GC timing makes them bimodal.
func ruleFor(m string) (rule, bool) {
	if r, ok := rules[m]; ok {
		return r, true
	}
	if strings.HasPrefix(m, "stage_") && strings.HasSuffix(m, "_wall_seconds") {
		return rule{higherBetter: false, threshold: 2.5}, true
	}
	return rule{}, false
}

// compare gates the new record against the previous one and returns one
// line per regression. With deterministicOnly set, wall-clock metrics are
// exempt — the mode for gating against a baseline from a different
// machine. Metrics or scenarios present on only one side are skipped: the
// gate tracks drift, not coverage.
func compare(prev, next Record, deterministicOnly bool) []string {
	var bad []string
	names := make([]string, 0, len(next.Scenarios))
	for name := range next.Scenarios {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		oldM, ok := prev.Scenarios[name]
		if !ok {
			continue
		}
		metrics := make([]string, 0, len(next.Scenarios[name]))
		for m := range next.Scenarios[name] {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			r, gated := ruleFor(m)
			old, both := oldM[m]
			if !gated || !both || old == 0 {
				continue
			}
			if deterministicOnly && !r.deterministic {
				continue
			}
			val := next.Scenarios[name][m]
			if r.higherBetter {
				if val < old/r.threshold {
					bad = append(bad, fmt.Sprintf("%s: %s fell %.4g -> %.4g (>%.2gx regression)",
						name, m, old, val, r.threshold))
				}
			} else if val > old*r.threshold {
				bad = append(bad, fmt.Sprintf("%s: %s rose %.4g -> %.4g (>%.2gx regression)",
					name, m, old, val, r.threshold))
			}
		}
	}
	return bad
}

// deltaLines renders the per-metric change of the new record against the
// previous one, one line per metric shared by both records, in deterministic
// order. This is the human-readable trajectory view printed on every run;
// the gate (compare) decides pass/fail separately.
func deltaLines(prev, next Record) []string {
	var lines []string
	names := make([]string, 0, len(next.Scenarios))
	for name := range next.Scenarios {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		oldM, ok := prev.Scenarios[name]
		if !ok {
			continue
		}
		metrics := make([]string, 0, len(next.Scenarios[name]))
		for m := range next.Scenarios[name] {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			old, both := oldM[m]
			if !both || old == 0 {
				continue
			}
			val := next.Scenarios[name][m]
			lines = append(lines, fmt.Sprintf("delta %s: %s %.4g -> %.4g (%+.1f%%)",
				name, m, old, val, 100*(val-old)/old))
		}
	}
	return lines
}

// slowdowns parses repeated -slow name=factor flags.
type slowdowns map[string]float64

func (s slowdowns) String() string {
	parts := make([]string, 0, len(s))
	for k, v := range s {
		parts = append(parts, fmt.Sprintf("%s=%g", k, v))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func (s slowdowns) Set(v string) error {
	name, factor, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want scenario=factor, got %q", v)
	}
	f, err := strconv.ParseFloat(factor, 64)
	if err != nil || f <= 0 {
		return fmt.Errorf("bad factor %q", factor)
	}
	s[name] = f
	return nil
}
