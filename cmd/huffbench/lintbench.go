package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/huffduff/huffduff/internal/lint"
)

// huffvetScenario measures one full-module huffvet pass — load and
// type-check every package against the offline source importer, build the
// call graph, and run all analyzers (including the flow-aware CFG/dataflow
// ones) — the cost CI pays on every push in the lint job. The wall time is
// host-sensitive (the standard library parses from source), so it gates
// loosely and same-machine only; the package count is recorded for context
// but not gated. The module must come out clean: a finding or a type error
// fails the scenario outright rather than silently skewing the timing.
func huffvetScenario() (Metrics, error) {
	root, err := benchModuleRoot()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	loader, err := lint.NewLoader(root)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		return nil, err
	}
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("huffvet: %s: %v", pkg.Path, pkg.TypeErrors[0])
		}
	}
	diags := lint.RunAnalyzers(pkgs, lint.All())
	wall := time.Since(start).Seconds()
	if len(diags) != 0 {
		return nil, fmt.Errorf("huffvet: module not clean: %s (and %d more)", diags[0], len(diags)-1)
	}
	return Metrics{
		"huffvet_wall_seconds": wall,
		"huffvet_packages":     float64(len(pkgs)),
	}, nil
}

// benchModuleRoot walks up from the working directory to the nearest
// go.mod, so the scenario works from the repo root (CI) or any subdir.
func benchModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("huffvet: no go.mod above %s", dir)
		}
		dir = parent
	}
}
