package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"github.com/huffduff/huffduff/internal/store"
)

// storeReadpath benchmarks the campaign store's read paths over a
// multi-thousand-campaign corpus: a seeded synthetic history is written into
// a segment-log store, the store is closed and reopened (timing the
// index-assisted load), and then point lookups, filtered time-range scans,
// and the per-model aggregate are measured against the reopened store.
//
// The corpus is fully deterministic — fixed base timestamp, seeded rand for
// the payload fields — so store_records, store_bytes, scan_matches, and
// aggregate_models gate under -deterministic-only, while the *_seconds
// metrics are host wall time and gate loosely on same-machine runs only.
// Background compaction is disabled (its timing would make segment layout
// run-dependent); the compaction path is covered by internal/store tests.
func storeReadpath() (Metrics, error) {
	const (
		campaigns    = 4000
		pointLookups = 2000
		scanIters    = 50
		aggIters     = 50
		baseNS       = int64(1_760_000_000_000_000_000) // fixed epoch for FinishedNS
	)
	models := []string{"smallcnn", "vggs", "resnet18", "alexnet", "mobilenetv2"}

	dir, err := os.MkdirTemp("", "huffbench-store-*")
	if err != nil {
		return nil, fmt.Errorf("store_readpath: %w", err)
	}
	defer os.RemoveAll(dir)

	// Write phase: a seeded synthetic terminal history. Small segments force
	// a realistic multi-segment layout (~hundreds of records per segment).
	cfg := store.SegmentConfig{SegmentBytes: 256 << 10, CompactAfter: -1, NoSync: true}
	s, err := store.Open(dir, cfg)
	if err != nil {
		return nil, fmt.Errorf("store_readpath: %w", err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 1; i <= campaigns; i++ {
		model := models[rng.Intn(len(models))]
		state := "done"
		if rng.Float64() < 0.1 {
			state = "failed"
		}
		finished := baseNS + int64(i)*int64(time.Second)
		wall := 1 + 30*rng.Float64()
		queries := int64(200 + rng.Intn(2000))
		payload, err := json.Marshal(map[string]any{
			"id": i, "spec": map[string]any{"model": model, "trials": 8, "q": 8},
			"state": state, "victim_queries": queries, "solution_count": 4,
		})
		if err != nil {
			return nil, fmt.Errorf("store_readpath: %w", err)
		}
		rec := store.CampaignRecord{
			ID: i, Model: model, State: state,
			FinishedNS: finished, WallSeconds: wall,
			Queries: queries, Degraded: rng.Float64() < 0.05,
			Payload: payload,
		}
		if err := s.PutCampaign(rec); err != nil {
			return nil, fmt.Errorf("store_readpath put: %w", err)
		}
		if i%100 == 0 {
			events, _ := json.Marshal([]map[string]any{
				{"ts": finished - int64(time.Second), "kind": "count", "name": "probe.runs", "value": 1},
				{"ts": finished, "kind": "gauge", "name": "converge.log10_volume", "value": 3.5},
			})
			batch := store.EventBatch{
				CampaignID: i,
				FirstNS:    finished - int64(time.Second),
				LastNS:     finished,
				Events:     events,
			}
			if err := s.PutEvents(batch); err != nil {
				return nil, fmt.Errorf("store_readpath put events: %w", err)
			}
		}
	}
	if err := s.Close(); err != nil {
		return nil, fmt.Errorf("store_readpath: %w", err)
	}

	// Reopen: the read-side store, loading via the sidecar indexes.
	start := time.Now()
	s, err = store.Open(dir, cfg)
	if err != nil {
		return nil, fmt.Errorf("store_readpath reopen: %w", err)
	}
	openSeconds := time.Since(start).Seconds()
	defer s.Close()
	stats := s.Stats()
	if stats.Records != campaigns {
		return nil, fmt.Errorf("store_readpath: reopened store has %d records, want %d", stats.Records, campaigns)
	}

	// Point lookups: seeded-random IDs, payload decoded each time.
	lookupRng := rand.New(rand.NewSource(43))
	start = time.Now()
	for i := 0; i < pointLookups; i++ {
		id := 1 + lookupRng.Intn(campaigns)
		rec, ok, err := s.Campaign(id)
		if err != nil || !ok {
			return nil, fmt.Errorf("store_readpath lookup %d: ok=%v err=%v", id, ok, err)
		}
		var payload map[string]any
		if err := json.Unmarshal(rec.Payload, &payload); err != nil {
			return nil, fmt.Errorf("store_readpath lookup %d payload: %w", id, err)
		}
	}
	lookupSeconds := time.Since(start).Seconds()

	// Filtered time-range scan: one model, done only, newest quarter of the
	// corpus, paginated window — the GET /campaigns query shape.
	scanQ := store.Query{
		Model: "smallcnn", State: "done",
		SinceNS: baseNS + int64(campaigns*3/4)*int64(time.Second),
	}
	matches, err := s.Campaigns(scanQ)
	if err != nil {
		return nil, fmt.Errorf("store_readpath scan: %w", err)
	}
	start = time.Now()
	for i := 0; i < scanIters; i++ {
		q := scanQ
		q.Offset, q.Limit = 10, 50
		if _, err := s.Campaigns(q); err != nil {
			return nil, fmt.Errorf("store_readpath scan: %w", err)
		}
	}
	scanSeconds := time.Since(start).Seconds()

	// Per-model aggregate: full-corpus percentile math off the index columns.
	aggs, err := s.AggregateByModel()
	if err != nil {
		return nil, fmt.Errorf("store_readpath aggregate: %w", err)
	}
	start = time.Now()
	for i := 0; i < aggIters; i++ {
		if _, err := s.AggregateByModel(); err != nil {
			return nil, fmt.Errorf("store_readpath aggregate: %w", err)
		}
	}
	aggSeconds := time.Since(start).Seconds()

	return Metrics{
		"wall_seconds": openSeconds + lookupSeconds + scanSeconds + aggSeconds,
		// Deterministic corpus shape: these hold across machines.
		"store_records":    float64(stats.Records),
		"store_bytes":      float64(stats.LiveBytes),
		"store_segments":   float64(stats.Segments),
		"scan_matches":     float64(len(matches)),
		"aggregate_models": float64(len(aggs)),
		// Host wall time, loosely gated on same-machine runs only.
		"open_seconds":         openSeconds,
		"point_lookup_seconds": lookupSeconds,
		"range_scan_seconds":   scanSeconds,
		"aggregate_seconds":    aggSeconds,
	}, nil
}
