// Command huffduff runs the end-to-end model-stealing attack against a
// simulated sparse-accelerator victim and reports everything it recovers:
// the dataflow graph, per-layer geometry, channel ratios from the timing
// side channel, and the finalized solution space.
//
// Usage:
//
//	huffduff -model resnet18 -scale 16 -keep 0.5 -trials 32
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"github.com/huffduff/huffduff/internal/accel"
	attack "github.com/huffduff/huffduff/internal/huffduff"
	"github.com/huffduff/huffduff/internal/models"
	"github.com/huffduff/huffduff/internal/prune"
)

func archByName(name string, scale int) (*models.Arch, error) {
	switch name {
	case "smallcnn":
		return models.SmallCNN(), nil
	case "vggs":
		return models.VGGS(scale), nil
	case "resnet18":
		return models.ResNet18(scale), nil
	case "alexnet":
		return models.AlexNet(scale), nil
	case "mobilenetv2":
		return models.MobileNetV2(scale), nil
	}
	return nil, fmt.Errorf("unknown model %q (want smallcnn|vggs|resnet18|alexnet|mobilenetv2)", name)
}

func main() {
	log.SetFlags(0)
	var (
		model   = flag.String("model", "smallcnn", "victim architecture")
		scale   = flag.Int("scale", 16, "channel-width divisor for the victim")
		keep    = flag.Float64("keep", 0.5, "fraction of weights kept after pruning (1 = dense)")
		trials  = flag.Int("trials", 32, "independent random probe trials T")
		q       = flag.Int("q", 24, "probe positions per family")
		seed    = flag.Int64("seed", 1, "victim and attack seed")
		defence = flag.Float64("defence", 0, "randomized zero-padding probability (§9.2 defence)")
		noiseOK = flag.Bool("noise-tolerant", false, "enable the repeated-measurement counter-attack")
	)
	flag.Parse()

	arch, err := archByName(*model, *scale)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed))
	bind, err := arch.Build(rng)
	if err != nil {
		log.Fatal(err)
	}
	if *keep < 1 {
		prune.GlobalMagnitude(bind.Net.Params(), *keep)
	}
	acfg := accel.DefaultConfig()
	acfg.ZeroPadProb = *defence
	acfg.Seed = *seed
	victim := accel.NewMachine(acfg, arch, bind)

	cfg := attack.DefaultConfig()
	cfg.Probe.Trials = *trials
	cfg.Probe.Q = *q
	cfg.Probe.Seed = *seed
	cfg.Probe.NoiseTolerant = *noiseOK

	fmt.Printf("victim: %s (%.0f%% weights pruned)\n", arch.Name, 100*prune.OverallSparsity(bind.Net.Params()))
	fmt.Printf("probing: T=%d trials x 4 families x Q=%d positions\n\n", *trials, *q)

	res, err := attack.Attack(victim, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "attack failed: %v\n", err)
		os.Exit(1)
	}

	fmt.Println("recovered dataflow graph:")
	fmt.Print(res.Graph.String())

	fmt.Println("\nrecovered conv geometry (vs ground truth):")
	correct, total := 0, 0
	for i, u := range arch.Units {
		if u.Kind != models.UnitConv {
			continue
		}
		total++
		got := res.Probe.Geoms[i+1]
		mark := "MISS"
		if got.Kernel == u.Kernel && got.Stride == u.Stride && got.Pool == u.Pool {
			mark = "ok"
			correct++
		}
		fmt.Printf("  %-8s recovered k=%d s=%d pool=%d   true k=%d s=%d pool=%d   kratio=%.2f  [%s]\n",
			u.Name, got.Kernel, got.Stride, got.Pool, u.Kernel, u.Stride, u.Pool, res.Timing.KRatio[i+1], mark)
	}
	fmt.Printf("geometry recovery: %d/%d\n", correct, total)

	sp := res.Space
	fmt.Printf("\nsolution space: k1 in [%d, %d] -> %d candidates (geometry ambiguity x%d)\n",
		sp.K1Min, sp.K1Max, len(sp.Solutions), sp.GeomAmbiguity)
	trueK1 := arch.Units[arch.ConvUnits()[0]].OutC
	inRange := trueK1 >= sp.K1Min && trueK1 <= sp.K1Max
	fmt.Printf("true first-layer channels: %d (in range: %v)\n", trueK1, inRange)

	samples := attack.SampleSolutions(sp, 3, rng)
	fmt.Println("\nsampled candidate architectures:")
	for _, s := range samples {
		fmt.Printf("--- k1=%d ---\n%s", s.K1, s.Arch.String())
	}
}
