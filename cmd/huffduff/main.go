// Command huffduff runs the end-to-end model-stealing attack against a
// simulated sparse-accelerator victim and reports everything it recovers:
// the dataflow graph, per-layer geometry, channel ratios from the timing
// side channel, and the finalized solution space.
//
// The -chaos flags wrap the victim in the fault-injection layer
// (internal/chaos) to exercise the hardened pipeline: transient device
// failures, timing jitter, dropped/duplicated/swapped DRAM events,
// truncated traces, and randomized-padding volume inflation. Combine with
// -robust to enable retries, min-over-repeats aggregation, the §8.2
// convergence loop, and graceful degradation.
//
// The observability flags capture the campaign: -trace-out writes a
// Chrome-trace/Perfetto JSON timeline of every pipeline stage down to
// individual probe positions, -metrics-out writes the counters, gauges, and
// histograms (plus a BENCH_attack.json summary alongside), and -v prints
// the span tree and per-layer device telemetry after the attack.
//
// Usage:
//
//	huffduff -model resnet18 -scale 16 -keep 0.5 -trials 32
//	huffduff -model smallcnn -chaos -robust
//	huffduff -model smallcnn -trace-out trace.json -metrics-out metrics.json -v
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/huffduff/huffduff/cmd/internal/cli"
	"github.com/huffduff/huffduff/internal/accel"
	"github.com/huffduff/huffduff/internal/chaos"
	"github.com/huffduff/huffduff/internal/converge"
	"github.com/huffduff/huffduff/internal/faults"
	attack "github.com/huffduff/huffduff/internal/huffduff"
	"github.com/huffduff/huffduff/internal/models"
	"github.com/huffduff/huffduff/internal/obs"
	"github.com/huffduff/huffduff/internal/prune"
)

func main() {
	cli.Setup()
	var (
		model   = flag.String("model", "smallcnn", "victim architecture ("+cli.ModelNames+")")
		scale   = flag.Int("scale", 16, "channel-width divisor for the victim")
		keep    = flag.Float64("keep", 0.5, "fraction of weights kept after pruning (1 = dense)")
		trials  = flag.Int("trials", 32, "independent random probe trials T")
		q       = flag.Int("q", 24, "probe positions per family")
		seed    = flag.Int64("seed", 1, "victim and attack seed")
		defence = flag.Float64("defence", 0, "randomized zero-padding probability (§9.2 defence)")
		noiseOK = flag.Bool("noise-tolerant", false, "enable the repeated-measurement counter-attack")

		robust    = flag.Bool("robust", false, "enable the fault-hardened pipeline (retries, convergence loop, graceful degradation)")
		retries   = flag.Int("retries", -1, "per-inference retry budget for transient faults (-1 keeps the config default)")
		timingTol = flag.Float64("timing-tol", 0.05, "max robust Δt dispersion before degrading to the timing-free space (with -robust)")

		chaosOn   = flag.Bool("chaos", false, "wrap the victim in the fault-injection layer")
		chaosSeed = flag.Int64("chaos-seed", 1, "fault-injection seed")
		transient = flag.Float64("chaos-transient", -1, "transient Run failure probability (-1 = class default)")
		jitter    = flag.Float64("chaos-jitter", -1, "timing jitter std as a fraction of the mean event gap")
		drop      = flag.Float64("chaos-drop", -1, "per-event drop probability")
		dup       = flag.Float64("chaos-dup", -1, "per-event duplication probability")
		swap      = flag.Float64("chaos-swap", -1, "per-event payload-swap probability")
		truncP    = flag.Float64("chaos-truncate", -1, "per-trace truncation probability")
		pad       = flag.Float64("chaos-pad", -1, "per-write padding-inflation probability")

		traceOut   = flag.String("trace-out", "", "write a Chrome-trace/Perfetto JSON span timeline to this file")
		metricsOut = cli.MetricsOutFlag() // plus BENCH_attack.json alongside
		verbose    = flag.Bool("v", false, "print the span tree, metric counters, and per-layer device telemetry")

		progress    = flag.Bool("progress", false, "stream convergence-ledger snapshots to stderr as the attack runs")
		ledgerOut   = flag.String("ledger-out", "", "write the convergence ledger as JSONL to this file")
		symMaxExprs = flag.Int("sym-max-exprs", 0, "abort the solve if the symbolic interner exceeds this many expressions (0 = unlimited)")
		symMaxBytes = flag.Int64("sym-max-bytes", 0, "abort the solve if the symbolic interner exceeds this many key bytes (0 = unlimited)")
	)
	flag.Parse()

	arch, err := cli.ArchByName(*model, *scale)
	cli.Check(err)
	bind, rng, err := cli.BuildPruned(arch, *seed, *keep)
	cli.Check(err)

	var col *obs.Collector
	if *traceOut != "" || *metricsOut != "" || *verbose {
		col = obs.NewCollector()
	}

	acfg := accel.DefaultConfig()
	acfg.ZeroPadProb = *defence
	acfg.Seed = *seed
	if col != nil {
		acfg.Obs = col
	}
	machine := accel.NewMachine(acfg, arch, bind)
	var victim attack.Victim = machine

	var faulty *chaos.FaultyVictim
	if *chaosOn {
		ccfg := chaos.DefaultConfig()
		ccfg.Seed = *chaosSeed
		if col != nil {
			ccfg.Obs = col
		}
		override := func(dst *float64, v float64) {
			if v >= 0 {
				*dst = v
			}
		}
		override(&ccfg.TransientProb, *transient)
		override(&ccfg.JitterStd, *jitter)
		override(&ccfg.DropProb, *drop)
		override(&ccfg.DupProb, *dup)
		override(&ccfg.SwapProb, *swap)
		override(&ccfg.TruncateProb, *truncP)
		override(&ccfg.PadProb, *pad)
		faulty = chaos.Wrap(victim, ccfg)
		victim = faulty
		fmt.Printf("chaos: fault injection on (seed %d)\n", ccfg.Seed)
	}

	cfg := attack.DefaultConfig()
	if *robust {
		cfg = attack.DefaultRobustConfig()
		cfg.TimingTolerance = *timingTol
	}
	cfg.Probe.Trials = *trials
	cfg.Probe.Q = *q
	cfg.Probe.Seed = *seed
	cfg.Probe.NoiseTolerant = *noiseOK
	cfg.Probe.SymMaxExprs = *symMaxExprs
	cfg.Probe.SymMaxBytes = *symMaxBytes
	if *retries >= 0 {
		cfg.Probe.MaxRetries = *retries
	}
	if col != nil {
		cfg.Obs = col
	}

	var led *converge.Ledger
	var progressDone chan struct{}
	if *progress || *ledgerOut != "" {
		// Don't wrap a nil *Collector in the Recorder interface: the ledger
		// checks rec == nil, which a typed nil would evade.
		var rec obs.Recorder
		if col != nil {
			rec = col
		}
		led = converge.NewLedger(rec)
		cfg.Ledger = led
	}
	if *progress {
		ch, _ := led.Subscribe()
		progressDone = make(chan struct{})
		go func() {
			defer close(progressDone)
			for s := range ch {
				line := fmt.Sprintf("progress: seq=%d stage=%s queries=%d log10_volume=%.2f bits_eliminated=%.1f",
					s.Seq, s.Stage, s.Queries, s.Log10Volume, s.BitsEliminated)
				if s.GeomAmbiguity > 0 {
					line += fmt.Sprintf(" geom_ambiguity=%d", s.GeomAmbiguity)
				}
				if s.SymExprs > 0 {
					line += fmt.Sprintf(" sym_exprs=%d", s.SymExprs)
				}
				if s.Degraded {
					line += " degraded"
				}
				if s.Done {
					line += " done"
				}
				if s.Note != "" {
					line += fmt.Sprintf(" note=%q", s.Note)
				}
				fmt.Fprintln(os.Stderr, line)
			}
		}()
	}

	fmt.Printf("victim: %s (%.0f%% weights pruned)\n", arch.Name, 100*prune.OverallSparsity(bind.Net.Params()))
	fmt.Printf("probing: T=%d trials x 4 families x Q=%d positions\n\n", *trials, *q)

	res, err := attack.Attack(victim, cfg)
	// Flush the trace, metrics, and ledger even when the attack died — a
	// failed campaign's timeline is exactly what the post-mortem needs.
	if led != nil {
		led.Close()
		if progressDone != nil {
			<-progressDone
		}
		if *ledgerOut != "" {
			writeLedger(led, *ledgerOut)
		}
	}
	flushObservability(col, machine, res, *traceOut, *metricsOut)
	if err != nil {
		if stage, ok := faults.StageOf(err); ok {
			fmt.Fprintf(os.Stderr, "attack failed in %s stage: %v\n", stage, err)
		} else {
			fmt.Fprintf(os.Stderr, "attack failed: %v\n", err)
		}
		os.Exit(1)
	}

	fmt.Println("recovered dataflow graph:")
	fmt.Print(res.Graph.String())

	fmt.Println("\nrecovered conv geometry (vs ground truth):")
	correct, total := 0, 0
	for i, u := range arch.Units {
		if u.Kind != models.UnitConv {
			continue
		}
		total++
		got := res.Probe.Geoms[i+1]
		mark := "MISS"
		if got.Kernel == u.Kernel && got.Stride == u.Stride && got.Pool == u.Pool {
			mark = "ok"
			correct++
		}
		kratio := 0.0
		if res.Timing != nil {
			kratio = res.Timing.KRatio[i+1]
		}
		conf := ""
		if res.Confidence != nil {
			conf = fmt.Sprintf("  conf=%.2f", res.Confidence[i+1])
		}
		fmt.Printf("  %-8s recovered k=%d s=%d pool=%d   true k=%d s=%d pool=%d   kratio=%.2f%s  [%s]\n",
			u.Name, got.Kernel, got.Stride, got.Pool, u.Kernel, u.Stride, u.Pool, kratio, conf, mark)
	}
	fmt.Printf("geometry recovery: %d/%d\n", correct, total)
	if cfg.Converge {
		fmt.Printf("convergence: agreed=%v from %d trials\n", res.Converged, res.TrialsConverged)
	}
	if res.VictimRetries > 0 {
		fmt.Printf("victim retries: %d inferences re-run\n", res.VictimRetries)
	}

	sp := res.Space
	if res.Degraded {
		if sp.Partial {
			fmt.Printf("\nDEGRADED result: solve aborted by the expression budget (%s)\n", res.DegradedReason)
			if res.Probe != nil && len(res.Probe.Sites) > 0 {
				fmt.Println("interner growth by call site (largest first):")
				for i, st := range res.Probe.Sites {
					if i == 5 {
						break
					}
					fmt.Printf("  %-16s %8d exprs %10d key bytes\n", st.Site, st.Misses, st.Bytes)
				}
			}
		} else {
			fmt.Printf("\nDEGRADED result: timing channel unusable (%s)\n", res.DegradedReason)
		}
		fmt.Println("per-conv channel bounds from transfer headers + sparse bound:")
		ids := make([]int, 0, len(sp.KBounds))
		for id := range sp.KBounds {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			fmt.Printf("  node %d: K in [%d, %d]\n", id, sp.KBounds[id][0], sp.KBounds[id][1])
		}
	}
	fmt.Printf("\nsolution space: k1 in [%d, %d] -> %d candidates (geometry ambiguity x%d)\n",
		sp.K1Min, sp.K1Max, len(sp.Solutions), sp.GeomAmbiguity)
	trueK1 := arch.Units[arch.ConvUnits()[0]].OutC
	inRange := trueK1 >= sp.K1Min && trueK1 <= sp.K1Max
	fmt.Printf("true first-layer channels: %d (in range: %v)\n", trueK1, inRange)

	if faulty != nil {
		s := faulty.Stats()
		fmt.Printf("\nchaos stats: %d runs, %d transients, %d padded, %d dropped, %d duplicated, %d swapped, %d truncated\n",
			s.Runs, s.Transients, s.Padded, s.Dropped, s.Duplicated, s.Swapped, s.Truncated)
	}

	if *verbose && col != nil {
		fmt.Println("\nspan tree (host wall-clock):")
		fmt.Print(col.Tree())
		snap := col.Metrics()
		fmt.Println("counters:")
		for _, k := range col.SortedCounterKeys() {
			fmt.Printf("  %-44s %g\n", k, snap.Counters[k])
		}
		fmt.Println("\ndevice telemetry (simulated time):")
		fmt.Print(machine.Campaign().String())
	}

	samples := attack.SampleSolutions(sp, 3, rng)
	fmt.Println("\nsampled candidate architectures:")
	for _, s := range samples {
		fmt.Printf("--- k1=%d ---\n%s", s.K1, s.Arch.String())
	}
}

// benchReport is the BENCH_attack.json schema the CI benchmark step uploads:
// the headline costs and outcome of one attack campaign.
type benchReport struct {
	VictimQueries float64            `json:"victim_queries"`
	VictimRetries float64            `json:"victim_retries"`
	StageSeconds  map[string]float64 `json:"stage_seconds"`
	TotalSeconds  float64            `json:"total_seconds"`
	// SimulatedDeviceSeconds is the victim's summed inference latency on the
	// simulated accelerator clock — a different clock from StageSeconds.
	SimulatedDeviceSeconds float64 `json:"simulated_device_seconds"`
	SolutionCount          int     `json:"solution_count"`
	Degraded               bool    `json:"degraded"`
}

// writeLedger dumps the convergence ledger as JSONL.
func writeLedger(led *converge.Ledger, path string) {
	f, err := os.Create(path)
	if err != nil {
		log.Printf("ledger: %v", err)
		return
	}
	defer f.Close()
	if err := led.WriteJSONL(f); err != nil {
		log.Printf("ledger: write %s: %v", path, err)
	}
}

// flushObservability writes the trace, metrics, and benchmark summary files
// that were requested on the command line.
func flushObservability(col *obs.Collector, machine *accel.Machine, res *attack.Result, traceOut, metricsOut string) {
	if col == nil {
		return
	}
	writeFile := func(path string, write func(w io.Writer) error) {
		f, err := os.Create(path)
		if err != nil {
			log.Printf("observability: %v", err)
			return
		}
		defer f.Close()
		if err := write(f); err != nil {
			log.Printf("observability: write %s: %v", path, err)
		}
	}
	if traceOut != "" {
		writeFile(traceOut, col.WriteTrace)
	}
	if metricsOut == "" {
		return
	}
	cli.WriteMetrics(col, metricsOut)

	snap := col.Metrics()
	rep := benchReport{
		VictimQueries: snap.Counters["victim.inferences"],
		StageSeconds:  map[string]float64{},
	}
	for k, v := range snap.Counters {
		if strings.HasPrefix(k, "victim.retries{") {
			rep.VictimRetries += v
		}
	}
	for k, h := range snap.Histograms {
		if s, ok := strings.CutPrefix(k, "stage.seconds{stage="); ok {
			stage := strings.TrimSuffix(s, "}")
			rep.StageSeconds[stage] += h.Sum
			rep.TotalSeconds += h.Sum
		}
	}
	rep.SimulatedDeviceSeconds = machine.Campaign().SimulatedTime
	if res != nil && res.Space != nil {
		rep.SolutionCount = res.Space.Count()
		rep.Degraded = res.Degraded
	}
	bench := filepath.Join(filepath.Dir(metricsOut), "BENCH_attack.json")
	writeFile(bench, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		return enc.Encode(rep)
	})
}
