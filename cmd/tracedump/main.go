// Command tracedump runs one inference on the simulated sparse accelerator
// and prints the DRAM trace the attacker would capture, followed by the
// segmented attacker view (footprints, dependencies, encoding intervals).
//
// Usage:
//
//	tracedump -model resnet18 -scale 16 -raw=false
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/huffduff/huffduff/cmd/internal/cli"
	"github.com/huffduff/huffduff/internal/accel"
	"github.com/huffduff/huffduff/internal/tensor"
	"github.com/huffduff/huffduff/internal/trace"
)

func main() {
	cli.Setup()
	var (
		model = flag.String("model", "smallcnn", "architecture ("+cli.ModelNames+")")
		scale = flag.Int("scale", 16, "channel-width divisor")
		keep  = flag.Float64("keep", 0.5, "fraction of weights kept")
		seed  = flag.Int64("seed", 1, "seed")
		raw   = flag.Bool("raw", false, "dump every raw DRAM access")
		limit = flag.Int("limit", 40, "max raw accesses to print")
	)
	flag.Parse()

	arch, err := cli.ArchByName(*model, *scale)
	cli.Check(err)
	bind, rng, err := cli.BuildPruned(arch, *seed, *keep)
	cli.Check(err)
	m := accel.NewMachine(accel.DefaultConfig(), arch, bind)

	img := tensor.New(arch.InC, arch.InH, arch.InW)
	img.Uniform(rng, 0, 1)
	tr, err := m.Run(img)
	if err != nil {
		log.Fatal(err)
	}

	reads, writes := tr.TotalBytes()
	fmt.Printf("trace: %d accesses, %d bytes read, %d bytes written\n", len(tr.Accesses), reads, writes)
	fmt.Printf("device: %s\n\n", m.LastStats())

	if *raw {
		for i, a := range tr.Accesses {
			if i >= *limit {
				fmt.Printf("... (%d more)\n", len(tr.Accesses)-i)
				break
			}
			fmt.Printf("%12.3fus %s 0x%08x %4dB\n", a.Time*1e6, a.Op, a.Addr, a.Bytes)
		}
		fmt.Println()
	}

	obs, err := trace.Analyze(tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("attacker view (segmented):")
	fmt.Printf("%4s %10s %10s %10s %12s  %s\n", "seg", "W bytes", "I bytes", "O bytes", "enc Δt (us)", "deps")
	for _, o := range obs {
		fmt.Printf("%4d %10d %10d %10d %12.3f  %v\n",
			o.Index, o.WeightBytes, o.InputBytes, o.OutputBytes, o.EncodingTime()*1e6, o.Deps)
	}
}
