// Command encbench explores the psum-encoding timing channel (§7.2, §8.2):
// for each evaluated LPDDR configuration it reports whether every layer of a
// deployed victim is GLB-bound and how much extra GLB bandwidth the
// accelerator could add before its first layer becomes DRAM-bound — the
// paper's §8.2 table.
//
// Usage:
//
//	encbench -model vggs -scale 8 -keep 0.1
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/huffduff/huffduff/cmd/internal/cli"
	"github.com/huffduff/huffduff/internal/accel"
	"github.com/huffduff/huffduff/internal/dram"
	"github.com/huffduff/huffduff/internal/models"
	"github.com/huffduff/huffduff/internal/obs"
	"github.com/huffduff/huffduff/internal/prune"
	"github.com/huffduff/huffduff/internal/tensor"
)

func main() {
	cli.Setup()
	var (
		model      = flag.String("model", "vggs", "architecture ("+cli.ModelNames+")")
		scale      = flag.Int("scale", 8, "channel-width divisor")
		keep       = flag.Float64("keep", 0.1, "fraction of weights kept (paper: 10x pruning)")
		seed       = flag.Int64("seed", 1, "seed")
		metricsOut = cli.MetricsOutFlag()
	)
	flag.Parse()

	arch, err := cli.ArchByName(*model, *scale)
	cli.Check(err)
	bind, rng, err := cli.BuildPruned(arch, *seed, *keep)
	cli.Check(err)

	// One representative inference to populate psum and output tensors.
	// With -metrics-out the machine publishes its per-layer device
	// telemetry (`accel.`-prefixed series) into the dumped snapshot.
	cfg := accel.DefaultConfig()
	var col *obs.Collector
	if *metricsOut != "" {
		col = obs.NewCollector()
		cfg.Obs = col
	}
	defer cli.WriteMetrics(col, *metricsOut)
	m := accel.NewMachine(cfg, arch, bind)
	img := tensor.New(arch.InC, arch.InH, arch.InW)
	img.Uniform(rng, 0, 1)
	if _, err := m.Run(img); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("victim %s, %.0f%% weights pruned\n", arch.Name, 100*prune.OverallSparsity(bind.Net.Params()))
	fmt.Printf("%-16s %10s %14s\n", "memory", "GLB-bound", "headroom (x)")
	for _, mem := range dram.EvaluatedSpecs() {
		c := cfg
		c.Mem = mem
		headroom := 1e18
		allGLB := true
		// The classifier head's psum count (#classes) is below DRAM block
		// granularity — its "interval" is a single transfer and carries no
		// timing information, so the paper's per-layer analysis (and ours)
		// covers the conv layers.
		for i, u := range arch.Units {
			if u.Kind != models.UnitConv {
				continue
			}
			psums := bind.UnitTensor(i).Size()
			if ps := bind.PsumOut(i); ps != nil {
				psums = ps.Size()
			}
			out := bind.UnitTensor(i)
			outBytes := c.ActCodec.Size(out.Data)
			glb, dr := accel.EncodingBounds(c, psums, outBytes)
			if dr > glb {
				allGLB = false
			}
			if h := glb / dr; h < headroom {
				headroom = h
			}
		}
		fmt.Printf("%-16s %10v %14.1f\n", fmt.Sprintf("%s-%dch", mem.Name, mem.Channels), allGLB, headroom)
	}
	fmt.Println("\nheadroom = how much faster the GLB could read psums before the")
	fmt.Println("first layer becomes DRAM-bound (the paper's §8.2 table).")
}
