package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/huffduff/huffduff/internal/lint"
)

// writeModule materializes a synthetic module from path->content pairs.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const synthGoMod = "module example.com/synth\n\ngo 1.22\n"

// dirtyModule seeds one violation per analyzer across the scoped package
// layout the analyzers expect.
func dirtyModule(t *testing.T) string {
	return writeModule(t, map[string]string{
		"go.mod": synthGoMod,
		"internal/accel/accel.go": `package accel

import "time"

func Tick() time.Time { return time.Now() }
`,
		"internal/tensor/tensor.go": `package tensor

func Eq(a, b float64) bool { return a == b }
`,
		"internal/chaos/chaos.go": `package chaos

import "math/rand"

func Flip() bool { return rand.Intn(2) == 1 }
`,
		"internal/huffduff/attack.go": `package huffduff

import "strconv"

func Parse(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	return n, nil
}
`,
		"internal/export/export.go": `package export

func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
`,
	})
}

// TestDirtyModule runs the driver against a module seeding one violation
// per analyzer and checks the exit code and the -json output shape.
func TestDirtyModule(t *testing.T) {
	dir := dirtyModule(t)
	var stdout, stderr bytes.Buffer
	code := run(dir, []string{"-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, stdout.String())
	}
	seen := map[string]bool{}
	for _, d := range diags {
		if d.File == "" || d.Line == 0 || d.Col == 0 || d.Message == "" {
			t.Errorf("diagnostic with empty fields: %+v", d)
		}
		seen[d.Analyzer] = true
	}
	for _, want := range []string{"hosttime", "floateq", "globalrand", "wrapcheck", "maporder"} {
		if !seen[want] {
			t.Errorf("no %s diagnostic in %s", want, stdout.String())
		}
	}
	if len(diags) != 5 {
		t.Errorf("got %d diagnostics, want exactly the 5 seeded ones:\n%s", len(diags), stdout.String())
	}
}

// TestCleanModule checks the zero-diagnostic exit path.
func TestCleanModule(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": synthGoMod,
		"internal/accel/accel.go": `package accel

func Cycles() int64 { return 42 }
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run(dir, []string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run produced output: %s", stdout.String())
	}
}

// TestCleanModuleJSON checks -json emits an empty array, not null, when
// there is nothing to report.
func TestCleanModuleJSON(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":     synthGoMod,
		"synth.go":   "package synth\n",
		"sub/sub.go": "package sub\n",
	})
	var stdout, stderr bytes.Buffer
	if code := run(dir, []string{"-json", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("clean -json output = %q, want []", got)
	}
}

// TestSuppressedModule checks //lint:ignore flips the exit code to clean.
func TestSuppressedModule(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": synthGoMod,
		"internal/accel/accel.go": `package accel

import "time"

func Tick() time.Time {
	//lint:ignore hosttime integration test exercises suppression
	return time.Now()
}
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run(dir, []string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0; stdout: %s", code, stdout.String())
	}
}

// TestBrokenModule checks type-check failures exit 2, distinct from
// diagnostics.
func TestBrokenModule(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":   synthGoMod,
		"synth.go": "package synth\n\nvar X = undefinedIdent\n",
	})
	var stdout, stderr bytes.Buffer
	if code := run(dir, []string{"./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "undefinedIdent") {
		t.Errorf("stderr does not name the type error: %s", stderr.String())
	}
}

// TestAnalyzerSubset checks -analyzers restricts the run.
func TestAnalyzerSubset(t *testing.T) {
	dir := dirtyModule(t)
	var stdout, stderr bytes.Buffer
	code := run(dir, []string{"-json", "-analyzers", "hosttime", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Analyzer != "hosttime" {
		t.Errorf("subset run returned %v, want the one hosttime finding", diags)
	}

	if code := run(dir, []string{"-analyzers", "nosuch"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown analyzer exit = %d, want 2", code)
	}
}

// TestList checks -list names every registered analyzer.
func TestList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(t.TempDir(), []string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, a := range lint.All() {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output missing %s", a.Name)
		}
	}
}

// TestRepoClean runs the driver over this repository itself — the
// acceptance bar CI enforces. Skipped in -short runs.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module analysis is slow; run without -short")
	}
	var stdout, stderr bytes.Buffer
	if code := run(".", []string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("huffvet is not clean on this repo (exit %d):\n%s%s", code, stdout.String(), stderr.String())
	}
}
