// Command huffvet runs this module's project-specific static analyzers
// (internal/lint) over the given packages and reports every violated
// simulation invariant with file/line diagnostics.
//
// Usage:
//
//	huffvet [-json] [-list] [-analyzers a,b] [packages]
//
// Packages default to ./... relative to the enclosing module. Exit status
// is 0 when clean, 1 when diagnostics were reported, and 2 when loading or
// type-checking failed.
//
// Diagnostics are suppressed one site at a time with
//
//	//lint:ignore <analyzer> <reason>
//
// on the offending line or the line above it; the reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/huffduff/huffduff/internal/lint"
)

func main() {
	os.Exit(run(".", os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable driver body: analyze patterns relative to the module
// enclosing dir, writing diagnostics to stdout and failures to stderr.
func run(dir string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("huffvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	names := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All()
	if *names != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*names, ",") {
			a, err := lint.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	root, err := findModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	pkgs, err := loader.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	broken := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(stderr, "huffvet: %s: %v\n", pkg.Path, terr)
			broken = true
		}
	}
	if broken {
		return 2
	}

	diags := lint.RunAnalyzers(pkgs, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", " ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, rel(root, d))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// rel renders a diagnostic with its file path relative to the module root,
// keeping output stable across checkouts.
func rel(root string, d lint.Diagnostic) string {
	if r, err := filepath.Rel(root, d.File); err == nil && !strings.HasPrefix(r, "..") {
		d.File = r
	}
	return d.String()
}

// findModuleRoot walks up from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("huffvet: no go.mod above %s", dir)
		}
		abs = parent
	}
}
