// Command solspace reproduces Table 1: the solution-space size for
// reverse-engineering a dense network with ReverseCNN versus a 10×-pruned
// network with the naïve sparse extension of §4.2.
//
// Usage:
//
//	solspace -alpha 0.999
package main

import (
	"context"
	"flag"
	"fmt"
	"time"

	"github.com/huffduff/huffduff/cmd/internal/cli"
	"github.com/huffduff/huffduff/internal/models"
	"github.com/huffduff/huffduff/internal/obs"
	"github.com/huffduff/huffduff/internal/reversecnn"
)

func main() {
	cli.Setup()
	var (
		alpha      = flag.Float64("alpha", 0.999, "assumed upper bound on weight sparsity (Eq. 11)")
		act        = flag.Float64("act", 0.5, "assumed post-ReLU activation density for the pruned victim")
		metricsOut = cli.MetricsOutFlag()
	)
	flag.Parse()

	var col *obs.Collector
	ctx := context.Background()
	if *metricsOut != "" {
		col = obs.NewCollector()
		ctx = obs.WithRecorder(ctx, col)
	}
	defer cli.WriteMetrics(col, *metricsOut)

	fmt.Printf("%-12s %16s %22s %8s\n", "network", "dense solutions", "naive sparse space", "log10")
	for _, arch := range []*models.Arch{models.ResNet18(1), models.VGGS(1)} {
		nctx, sp := obs.Startf(ctx, "solspace.%s", arch.Name)
		start := time.Now()
		denseObs, err := reversecnn.FromArch(arch, reversecnn.DenseProfile, 1)
		cli.Check(err)
		chain, _, _ := denseObs.ChainObs()
		sols, err := reversecnn.SolveDense(chain, arch.InH, arch.InC, reversecnn.DefaultSpace(), 0)
		cli.Check(err)

		sparseObs, err := reversecnn.FromArch(arch, reversecnn.LTHProfile, *act)
		cli.Check(err)
		count, err := reversecnn.SparseCount(sparseObs.Obs, sparseObs.Xs, sparseObs.Cs, *alpha, reversecnn.DefaultSpace())
		cli.Check(err)
		label := "network=" + arch.Name
		obs.Gauge(nctx, "solspace.dense_solutions", label, float64(len(sols)))
		obs.Gauge(nctx, "solspace.sparse_log10", label, float64(reversecnn.OrdersOfMagnitude(count)))
		obs.Observe(nctx, "stage.seconds", "stage=solspace."+arch.Name, time.Since(start).Seconds())
		sp.End()
		fmt.Printf("%-12s %16d %22s %8d\n", arch.Name, len(sols), shorten(count.String()), reversecnn.OrdersOfMagnitude(count))
	}
	fmt.Println("\npaper (Table 1 / §4.2): dense ResNet-18 -> 8 solutions;")
	fmt.Println("sparse ResNet-18 -> 4x10^96; sparse VGG-S -> 2.6x10^74.")
}

func shorten(s string) string {
	if len(s) <= 8 {
		return s
	}
	return fmt.Sprintf("%c.%sx10^%d", s[0], s[1:4], len(s)-1)
}
