// Command huffduffd is the live campaign daemon: it accepts attack jobs
// over HTTP, runs them on a bounded worker pool against freshly deployed
// simulated victims, and exposes the operator surface of a long-running
// service — Prometheus metrics, live per-campaign progress with device
// telemetry, a flight-recorder event dump, and pprof.
//
// Usage:
//
//	huffduffd -addr 127.0.0.1:9120 -workers 2
//
// Submit a campaign and watch it:
//
//	curl -d '{"model":"smallcnn","trials":8,"q":8}' localhost:9120/campaigns
//	curl localhost:9120/campaigns/1
//	curl localhost:9120/metrics
//
// SIGINT/SIGTERM drain the worker pool before exit.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/huffduff/huffduff/cmd/internal/cli"
	"github.com/huffduff/huffduff/internal/obs"
	"github.com/huffduff/huffduff/internal/telemetry"
)

func main() {
	cli.Setup()
	var (
		addr      = flag.String("addr", "127.0.0.1:9120", "listen address")
		workers   = flag.Int("workers", 2, "concurrent campaign workers")
		queue     = flag.Int("queue", 16, "max queued (unstarted) campaigns")
		flightN   = flag.Int("flight", obs.DefaultFlightEvents, "flight-recorder capacity (events)")
		eventsOut = flag.String("events-out", "", "append every telemetry event to this JSONL file")
		drain     = flag.Duration("drain", 10*time.Minute, "max time to wait for running campaigns on shutdown")
	)
	flag.Parse()

	col := obs.NewCollector()
	flight := obs.NewFlightRecorder(*flightN)
	sinks := []obs.Recorder{col, flight}
	var sink *obs.JSONLSink
	if *eventsOut != "" {
		f, err := os.OpenFile(*eventsOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		cli.Check(err)
		defer f.Close()
		sink = obs.NewJSONLSink(f)
		sinks = append(sinks, sink)
	}

	d := telemetry.NewDaemon(telemetry.DaemonConfig{
		Workers:    *workers,
		QueueDepth: *queue,
		Recorder:   obs.Fanout(sinks...),
	})
	srv := telemetry.NewServer(telemetry.ServerOptions{
		Collector: col,
		Flight:    flight,
		Campaigns: d,
		Submitter: d,
	})

	l, err := net.Listen("tcp", *addr)
	cli.Check(err)
	log.Printf("huffduffd listening on http://%s (%d workers, queue %d)", l.Addr(), *workers, *queue)
	log.Printf("endpoints: /metrics /healthz /campaigns /events /debug/pprof/")

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("%s: draining campaigns (up to %s)...", s, *drain)
	case err := <-serveErr:
		log.Fatalf("serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if sink != nil {
		if err := sink.Err(); err != nil {
			log.Printf("events-out: %v", err)
		}
	}
	log.Printf("huffduffd stopped")
}
