// Command huffduffd is the live campaign daemon: it accepts attack jobs
// over HTTP, runs them on a supervised bounded worker pool against freshly
// deployed simulated victims, and exposes the operator surface of a
// long-running service — Prometheus metrics, live per-campaign progress
// with device telemetry, a flight-recorder event dump, and pprof.
//
// With -data-dir the daemon is crash-safe: every submission and state
// transition is journaled (fsync'd JSONL segments) before it is
// acknowledged, and a restart on the same directory replays the journal,
// preserves campaign IDs and terminal results, and requeues whatever was
// queued or running when the process died. Terminal campaigns are
// additionally persisted into an embedded segment-log store under
// <data-dir>/store, which serves the queryable history:
//
//	curl 'localhost:9120/campaigns?model=smallcnn&state=done&limit=10'
//	curl 'localhost:9120/campaigns/aggregate?by=model'
//	curl 'localhost:9120/campaigns/1/events'
//
// Usage:
//
//	huffduffd -addr 127.0.0.1:9120 -workers 2 -data-dir /var/lib/huffduffd
//
// Submit a campaign and watch it:
//
//	curl -d '{"model":"smallcnn","trials":8,"q":8}' localhost:9120/campaigns
//	curl localhost:9120/campaigns/1
//	curl localhost:9120/metrics
//	curl localhost:9120/healthz
//
// SIGINT/SIGTERM drain the worker pool before exit; during the drain
// /healthz reports "draining" with 503 and new submissions are refused.
// Anything not finished by -drain stays requeueable in the journal.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"github.com/huffduff/huffduff/cmd/internal/cli"
	"github.com/huffduff/huffduff/internal/obs"
	"github.com/huffduff/huffduff/internal/prof"
	"github.com/huffduff/huffduff/internal/store"
	"github.com/huffduff/huffduff/internal/telemetry"
)

func main() {
	cli.Setup()
	var (
		addr      = flag.String("addr", "127.0.0.1:9120", "listen address")
		workers   = flag.Int("workers", 2, "concurrent campaign workers")
		queue     = flag.Int("queue", 16, "max queued (unstarted) campaigns; beyond it submissions get 429 + Retry-After")
		dataDir   = flag.String("data-dir", "", "durable state directory; empty runs ephemeral (no crash resume)")
		flightN   = flag.Int("flight", obs.DefaultFlightEvents, "flight-recorder capacity (events)")
		eventsOut = flag.String("events-out", "", "append every telemetry event to this JSONL file")
		drain     = flag.Duration("drain", 10*time.Minute, "max time to wait for running campaigns on shutdown")
		jobTO     = flag.Duration("job-timeout", 0, "default per-campaign deadline (0 = none; jobs may override via timeout_seconds)")
		retryMax  = flag.Int("retry-attempts", 3, "max run attempts per campaign (panics, deadlines, and transient faults are retried)")
		retryBase = flag.Duration("retry-base", time.Second, "backoff before the second attempt; doubles per attempt")
	)
	flag.Parse()

	col := obs.NewCollector()
	flight := obs.NewFlightRecorder(*flightN)
	sinks := []obs.Recorder{col, flight}
	var sink *obs.JSONLSink
	if *eventsOut != "" {
		f, err := os.OpenFile(*eventsOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		cli.Check(err)
		defer f.Close()
		sink = obs.NewJSONLSink(f)
		sinks = append(sinks, sink)
	}
	rec := obs.Fanout(sinks...)

	var journal *telemetry.Journal
	var hist store.Store
	if *dataDir != "" {
		j, err := telemetry.OpenJournal(filepath.Join(*dataDir, "journal"), telemetry.JournalConfig{Obs: rec})
		cli.Check(err)
		journal = j
		terminal, requeued := 0, 0
		for _, rc := range j.Replayed() {
			if rc.Terminal() {
				terminal++
			} else {
				requeued++
			}
		}
		log.Printf("journal %s: replayed %d finished campaign(s), requeued %d interrupted",
			filepath.Join(*dataDir, "journal"), terminal, requeued)

		storeDir := filepath.Join(*dataDir, "store")
		seg, err := store.Open(storeDir, store.SegmentConfig{Obs: rec})
		cli.Check(err)
		hist = seg
		st := seg.Stats()
		log.Printf("store %s: %d campaign(s), %d event batch(es) across %d segment(s)",
			storeDir, st.Records, st.EventBatches, st.Segments)
	}

	d := telemetry.NewDaemon(telemetry.DaemonConfig{
		Workers:    *workers,
		QueueDepth: *queue,
		Recorder:   rec,
		Journal:    journal,
		Store:      hist,
		Flight:     flight,
		JobTimeout: *jobTO,
		Retry:      telemetry.RetryPolicy{MaxAttempts: *retryMax, BaseDelay: *retryBase},
	})
	srv := telemetry.NewServer(telemetry.ServerOptions{
		Collector: col,
		Flight:    flight,
		Campaigns: d,
		Submitter: d,
		Health:    d,
		Progress:  d,
		Runtime:   prof.NewRuntimeSampler(),
	})

	l, err := net.Listen("tcp", *addr)
	cli.Check(err)
	log.Printf("huffduffd listening on http://%s (%d workers, queue %d)", l.Addr(), *workers, *queue)
	log.Printf("endpoints: /metrics /healthz /campaigns /campaigns/aggregate /campaigns/{id}/progress[/stream] /campaigns/{id}/events /events /debug/profile /debug/pprof/")

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("%s: draining campaigns (up to %s)...", s, *drain)
	case err := <-serveErr:
		log.Fatalf("serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v (unfinished campaigns stay requeueable in the journal)", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if journal != nil {
		if err := journal.Close(); err != nil {
			log.Printf("journal: %v", err)
		}
	}
	if hist != nil {
		if err := hist.Close(); err != nil {
			log.Printf("store: %v", err)
		}
	}
	if sink != nil {
		if err := sink.Err(); err != nil {
			log.Printf("events-out: %v", err)
		}
	}
	log.Printf("huffduffd stopped")
}
