package cli

import (
	"strings"
	"testing"

	"github.com/huffduff/huffduff/internal/models"
)

// TestEveryRegisteredNameResolves pins the registry contract: every name in
// models.Names() builds an architecture, and ModelNames lists exactly those
// names, so help strings can never drift from the real model list.
func TestEveryRegisteredNameResolves(t *testing.T) {
	names := models.Names()
	if len(names) == 0 {
		t.Fatal("model registry is empty")
	}
	for _, name := range names {
		arch, err := ArchByName(name, 16)
		if err != nil {
			t.Errorf("ArchByName(%q) failed: %v", name, err)
			continue
		}
		if arch == nil || len(arch.Units) == 0 {
			t.Errorf("ArchByName(%q) returned an empty architecture", name)
		}
	}
	if got, want := ModelNames, strings.Join(names, "|"); got != want {
		t.Fatalf("ModelNames = %q, want %q", got, want)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
	if _, err := ArchByName("nope", 1); err == nil {
		t.Fatal("ArchByName accepted an unregistered name")
	}
}
