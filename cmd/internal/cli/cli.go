// Package cli holds the plumbing shared by every huffduff command-line
// tool: logger setup, the model-name registry, victim construction, and the
// shared observability flags.
package cli

import (
	"flag"
	"log"
	"math/rand"
	"os"
	"strings"

	"github.com/huffduff/huffduff/internal/models"
	"github.com/huffduff/huffduff/internal/obs"
	"github.com/huffduff/huffduff/internal/prune"
)

// ModelNames is the canonical model list for flag help strings, derived
// from the registry in internal/models so it can never drift from the
// actual model list.
var ModelNames = strings.Join(models.Names(), "|")

// Setup configures the standard logger the way every tool wants it: bare
// messages, no timestamp prefix.
func Setup() {
	log.SetFlags(0)
}

// Check aborts the tool on a non-nil error.
func Check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// ArchByName resolves a -model flag value to a victim architecture.
func ArchByName(name string, scale int) (*models.Arch, error) {
	return models.ByName(name, scale)
}

// BuildPruned instantiates a victim's weights from seed and applies global
// magnitude pruning when keep < 1. The returned rng continues the same
// stream, so callers get reproducible follow-on randomness.
func BuildPruned(arch *models.Arch, seed int64, keep float64) (*models.Binding, *rand.Rand, error) {
	rng := rand.New(rand.NewSource(seed))
	bind, err := arch.Build(rng)
	if err != nil {
		return nil, nil, err
	}
	if keep < 1 {
		prune.GlobalMagnitude(bind.Net.Params(), keep)
	}
	return bind, rng, nil
}

// MetricsOutFlag registers the shared -metrics-out flag every instrumented
// tool accepts and returns its value pointer. Call before flag.Parse.
func MetricsOutFlag() *string {
	return flag.String("metrics-out", "", "write the run's metrics JSON (counters, gauges, histograms) to this file")
}

// WriteMetrics writes col's metrics JSON to path. It is a no-op when path
// is empty or col is nil, and logs (rather than aborts) on I/O errors — a
// failed metrics dump must not turn a finished run into a failure.
func WriteMetrics(col *obs.Collector, path string) {
	if col == nil || path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Printf("observability: %v", err)
		return
	}
	defer f.Close()
	if err := col.WriteMetrics(f); err != nil {
		log.Printf("observability: write %s: %v", path, err)
	}
}
