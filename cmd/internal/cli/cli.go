// Package cli holds the plumbing shared by every huffduff command-line
// tool: logger setup, the model-name registry, and victim construction.
package cli

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/huffduff/huffduff/internal/models"
	"github.com/huffduff/huffduff/internal/prune"
)

// ModelNames is the canonical model list for flag help strings.
const ModelNames = "smallcnn|vggs|resnet18|alexnet|mobilenetv2"

// Setup configures the standard logger the way every tool wants it: bare
// messages, no timestamp prefix.
func Setup() {
	log.SetFlags(0)
}

// Check aborts the tool on a non-nil error.
func Check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// ArchByName resolves a -model flag value to a victim architecture.
func ArchByName(name string, scale int) (*models.Arch, error) {
	switch name {
	case "smallcnn":
		return models.SmallCNN(), nil
	case "vggs":
		return models.VGGS(scale), nil
	case "resnet18":
		return models.ResNet18(scale), nil
	case "alexnet":
		return models.AlexNet(scale), nil
	case "mobilenetv2":
		return models.MobileNetV2(scale), nil
	}
	return nil, fmt.Errorf("unknown model %q (want %s)", name, ModelNames)
}

// BuildPruned instantiates a victim's weights from seed and applies global
// magnitude pruning when keep < 1. The returned rng continues the same
// stream, so callers get reproducible follow-on randomness.
func BuildPruned(arch *models.Arch, seed int64, keep float64) (*models.Binding, *rand.Rand, error) {
	rng := rand.New(rand.NewSource(seed))
	bind, err := arch.Build(rng)
	if err != nil {
		return nil, nil, err
	}
	if keep < 1 {
		prune.GlobalMagnitude(bind.Net.Params(), keep)
	}
	return bind, rng, nil
}
